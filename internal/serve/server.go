package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/snapshot"
)

// Config configures a Server. The zero value is usable: New fills every
// unset field with the documented default.
type Config struct {
	// Workers is the fixed worker-pool size (default 2). Each worker runs
	// one synthesis at a time; host memory budget ≈ Workers × Ceiling.MaxMemory.
	Workers int
	// SearchWorkers is the pool's parallel-search core budget. When the
	// queues are shallow, a dequeued job claims several of these and runs
	// the deterministic-merge parallel engine; when jobs are waiting,
	// cores are better spent running more jobs concurrently and everyone
	// degrades to the sequential engine. 0 or 1 disables parallel search.
	SearchWorkers int
	// QueueInteractive and QueueBatch cap the per-class job queues
	// (defaults 64 and 256). A full class sheds with 429 + Retry-After.
	QueueInteractive int
	QueueBatch       int
	// Ceiling clamps every request's budgets. Defaults: 60 s, 512 MiB;
	// steps and gates unlimited.
	Ceiling core.BudgetCeiling
	// StateDir, when non-empty, enables graceful drain: in-flight searches
	// checkpoint into it and unfinished jobs persist in a ledger that the
	// next start recovers. Empty disables drain persistence (jobs are
	// simply canceled).
	StateDir string
	// CacheDir, when non-empty, enables the canonical-form answer cache
	// (internal/cache) persisted under it: submissions whose class is
	// already solved under the same options fingerprint are answered
	// before they reach the queue, and every verified worker result is
	// stored for the next restart. Empty disables the cache unless Cache
	// is set directly.
	CacheDir string
	// Cache overrides the answer cache instance (tests, or sharing one
	// cache across servers). nil with a CacheDir opens a persistent cache
	// there; nil without one disables caching.
	Cache *cache.Cache
	// CheckpointInterval is the periodic checkpoint cadence for running
	// jobs (default 30 s); the drain flush happens regardless.
	CheckpointInterval time.Duration
	// CheckpointEverySteps switches running jobs to a deterministic
	// every-N-expansions checkpoint cadence (tests).
	CheckpointEverySteps int
	// RetryAfter is the base client back-off hint on shed and drain
	// responses (default 1 s); the hint grows with queue depth.
	RetryAfter time.Duration
	// FS overrides the filesystem checkpoint and ledger writes go through;
	// nil selects the real disk. The fault-injection tests crash it; the
	// chaos harness makes it persistently sick.
	FS snapshot.FS
	// Runner overrides how a job is executed — the test seam for overload
	// and scheduling tests. nil selects the real engine (realRun).
	Runner func(ctx context.Context, j *Job) core.Result
	// Health overrides the fault-domain supervisor (shared dashboards,
	// tests); nil builds a private one. The server registers its domains
	// (see DomainNames) on it either way.
	Health *health.Supervisor
	// HealthConfig tunes the per-domain breakers: failure threshold,
	// probe backoffs, clock. The zero value selects the health package
	// defaults (3 consecutive failures, 500 ms base, 30 s cap).
	HealthConfig health.Config
	// RequiredDomains lists fault domains whose open state must fail
	// /v1/readyz (default: none — every domain is optional, degradation
	// never takes the instance out of rotation).
	RequiredDomains []string
	// RateLimit enables per-client fairness: each client (X-Client-ID
	// header, else remote host) may submit at most this many jobs per
	// second, sustained; excess submissions shed with 429 + Retry-After.
	// Zero disables.
	RateLimit float64
	// RateBurst is the fairness bucket capacity — how many submissions a
	// quiet client may burst before the sustained rate applies (default:
	// one second's worth plus one).
	RateBurst int
	// Logf is the operational logger for events that must not be lost
	// when their durable path is down (quarantine artifacts, degraded
	// startup). nil selects log.Printf.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.QueueInteractive <= 0 {
		out.QueueInteractive = 64
	}
	if out.QueueBatch <= 0 {
		out.QueueBatch = 256
	}
	if out.Ceiling.MaxTime <= 0 {
		out.Ceiling.MaxTime = time.Minute
	}
	if out.Ceiling.MaxMemory <= 0 {
		out.Ceiling.MaxMemory = 512 << 20
	}
	if out.CheckpointInterval <= 0 {
		out.CheckpointInterval = 30 * time.Second
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = time.Second
	}
	if out.FS == nil {
		out.FS = snapshot.DiskFS
	}
	if out.Logf == nil {
		out.Logf = log.Printf
	}
	return out
}

// Stats are the server's monotonic counters, exposed on /v1/healthz.
// VerifyFailures counts circuits withdrawn by the independent verification
// gate (per attempt); DegradedReruns counts the graceful-degradation
// re-runs those failures triggered. Both should read zero on a healthy
// instance — a nonzero value means an engine bug reached production and
// there is a quarantine artifact to triage in the state directory.
type Stats struct {
	Submitted      int64 `json:"submitted"`
	Deduplicated   int64 `json:"deduplicated"`
	Shed           int64 `json:"shed"`
	Completed      int64 `json:"completed"`
	Failed         int64 `json:"failed"`
	Interrupted    int64 `json:"interrupted"`
	Recovered      int64 `json:"recovered"`
	VerifyFailures int64 `json:"verify_failures"`
	DegradedReruns int64 `json:"degraded_reruns"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	// RateLimited counts submissions shed by the per-client fairness
	// bucket (429 before the body was read).
	RateLimited int64 `json:"rate_limited"`
	// DisconnectCancels counts interactive searches canceled because
	// every waiting client disconnected before the result.
	DisconnectCancels int64 `json:"disconnect_cancels"`
}

// Server is the synthesis service: bounded queue, worker pool, job
// registry, drain machinery. Create with New, start workers with Start,
// mount Handler on an http.Server, stop with Drain.
type Server struct {
	cfg   Config
	queue *jobQueue
	cache *cache.Cache // nil: caching disabled

	// Fault-domain supervision (see health.go): per-domain breakers plus
	// the guarded filesystems checkpoint and quarantine writes go through.
	health *health.Supervisor
	domCache, domCkpt,
	domLedger, domQuar *health.Breaker
	ckptFS, quarFS snapshot.FS

	limiter *limiter // per-client fairness; nil when RateLimit is 0

	mu    sync.Mutex
	jobs  map[string]*Job // by ID (= idempotency key hex)
	byKey map[uint64]*Job

	running atomic.Int64
	stats   struct {
		submitted, deduped, shed, completed, failed, interrupted, recovered atomic.Int64
		verifyFailures, degradedReruns                                      atomic.Int64
		cacheHits, cacheMisses                                              atomic.Int64
		rateLimited, disconnectCancels                                      atomic.Int64
	}

	draining  atomic.Bool
	drainCtx  context.Context
	drainStop context.CancelFunc
	wg        sync.WaitGroup

	// warnings collected during recovery (unreadable ledger entries, ...).
	recoveryNotes []string
}

func jobID(key uint64) string { return fmt.Sprintf("%016x", key) }

// New builds a Server and, when cfg.StateDir is set, recovers the previous
// process's unfinished jobs from its drain ledger. Faults in the optional
// dependencies never fail the start — they degrade: an unusable cache
// directory falls back to a memory-only cache, an unusable state directory
// trips the checkpoint and ledger domains and disables resume for the
// window, damaged ledgers or checkpoints degrade to fewer recovered jobs
// or fresh re-runs. Everything shed is reported in RecoveryNotes and on
// the health endpoints.
func New(cfg Config) (*Server, error) {
	c := cfg.withDefaults()
	s := &Server{
		cfg:     c,
		queue:   newJobQueue(c.QueueInteractive, c.QueueBatch),
		cache:   c.Cache,
		jobs:    make(map[string]*Job),
		byKey:   make(map[uint64]*Job),
		limiter: newLimiter(c.RateLimit, c.RateBurst, nil),
	}
	s.initHealth()
	if s.cache == nil && c.CacheDir != "" {
		ac, err := cache.Open(c.CacheDir, c.FS)
		if err != nil {
			// The cache is a feature, not a dependency: serve without
			// persistence rather than refuse to start.
			s.recoveryNotes = append(s.recoveryNotes,
				fmt.Sprintf("cache dir unusable (%v); caching in memory only", err))
			s.domCache.Trip(err)
			ac = cache.New()
			c.Logf("serve: cache dir unusable (%v); caching in memory only", err)
		}
		s.cache = ac
	}
	if s.cache != nil {
		s.cache.SetGuard(s.domCache)
	}
	s.drainCtx, s.drainStop = context.WithCancel(context.Background())
	if c.StateDir != "" {
		s.recover()
	}
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// RecoveryNotes reports what the start-time ledger recovery skipped or
// degraded (empty on a clean start).
func (s *Server) RecoveryNotes() []string { return append([]string(nil), s.recoveryNotes...) }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:         s.stats.submitted.Load(),
		Deduplicated:      s.stats.deduped.Load(),
		Shed:              s.stats.shed.Load(),
		Completed:         s.stats.completed.Load(),
		Failed:            s.stats.failed.Load(),
		Interrupted:       s.stats.interrupted.Load(),
		Recovered:         s.stats.recovered.Load(),
		VerifyFailures:    s.stats.verifyFailures.Load(),
		DegradedReruns:    s.stats.degradedReruns.Load(),
		CacheHits:         s.stats.cacheHits.Load(),
		CacheMisses:       s.stats.cacheMisses.Load(),
		RateLimited:       s.stats.rateLimited.Load(),
		DisconnectCancels: s.stats.disconnectCancels.Load(),
	}
}

// job looks up a job by ID.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// admit registers a compiled request, deduplicating by idempotency key.
// A request whose canonical class is already in the answer cache is
// registered as an already-finished job (source "cache") without touching
// the queue; everything else is enqueued for the worker pool. Returns the
// job and whether it was deduplicated.
func (s *Server) admit(c *compiled, req Request) (*Job, bool, error) {
	if existing, ok := s.dedup(c.key); ok {
		return existing, true, nil
	}

	// Cache probe outside the registry lock: a hit conjugates and
	// re-verifies the derived circuit by simulation, which should not
	// serialize unrelated admissions.
	if j := s.fromCache(c, req); j != nil {
		s.mu.Lock()
		if existing, ok := s.byKey[c.key]; ok && existing.Status() != StatusFailed && !existing.redoable() {
			// A concurrent identical submission won the registration race.
			s.mu.Unlock()
			s.stats.deduped.Add(1)
			return existing, true, nil
		}
		s.jobs[j.id] = j
		s.byKey[j.key] = j
		s.mu.Unlock()
		s.stats.submitted.Add(1)
		s.stats.completed.Add(1)
		return j, false, nil
	}

	s.mu.Lock()
	if existing, ok := s.byKey[c.key]; ok && existing.Status() != StatusFailed && !existing.redoable() {
		s.mu.Unlock()
		s.stats.deduped.Add(1)
		return existing, true, nil
	}
	j := newJob(c, req, time.Now())
	s.jobs[j.id] = j
	s.byKey[j.key] = j
	s.mu.Unlock()

	if err := s.queue.Enqueue(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		delete(s.byKey, j.key)
		s.mu.Unlock()
		return nil, false, err
	}
	s.stats.submitted.Add(1)
	return j, false, nil
}

// dedup returns the live job already registered under key, if any. Failed
// jobs and client-disconnect-canceled jobs without a circuit are not
// deduplication targets — a retry earns a fresh run.
func (s *Server) dedup(key uint64) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.byKey[key]; ok && existing.Status() != StatusFailed && !existing.redoable() {
		s.stats.deduped.Add(1)
		return existing, true
	}
	return nil, false
}

// retryAfter computes the client back-off hint: the base grows with how
// many dequeues stand between the client and a free worker.
func (s *Server) retryAfter(class Class) time.Duration {
	qi, qb := s.queue.Depths()
	depth := qi
	if class == Batch {
		depth += qb // batch waits behind every interactive job too
	}
	waves := 1 + depth/s.cfg.Workers
	return time.Duration(waves) * s.cfg.RetryAfter
}

// --- HTTP layer ---

// maxRequestBody caps the submit body size (PLA and PPRM texts included).
const maxRequestBody = 8 << 20

// errorBody is the JSON error envelope.
type errorBody struct {
	Error RequestError `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, field, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: *reqErr(field, format, args...)})
}

func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	// Ceiling, not nearest-second rounding: Retry-After is a promise about
	// when capacity should exist. Rounding 2.4 s of expected wait down to
	// 2 re-admits the client early, only to shed it again — under sustained
	// overload every retry wave came back ~17% hot. Never hint below 1 s.
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/jobs           submit (idempotent; ?wait or "wait":true blocks)
//	GET  /v1/jobs/{id}      job status and result
//	GET  /v1/jobs/{id}/stream  JSON-lines progress until the job finishes
//	GET  /v1/healthz        liveness, queue depths, counters, fault domains
//	GET  /v1/readyz         readiness: 503 while draining or a required
//	                        fault domain is open
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/readyz", s.handleReady)
	return mux
}

// httpStatusFor maps a finished job to the sync-path HTTP status: the typed
// StopReason decides. Solved-with-circuit is 200; a search that ran out of
// budget without a circuit is 422 (the request was valid, the budget was
// not enough); an internal abort is 500.
func httpStatusFor(j *Job) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusFailed:
		return http.StatusInternalServerError
	case StatusDone:
		if j.res.Found {
			return http.StatusOK
		}
		return http.StatusUnprocessableEntity
	default:
		return http.StatusOK
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		setRetryAfter(w, s.cfg.RetryAfter)
		writeError(w, http.StatusServiceUnavailable, "", "server is draining; retry against the restarted instance")
		return
	}
	// Per-client fairness, before the body is even read: an over-limit
	// client costs one map lookup, not a decode and a queue slot.
	if s.limiter != nil {
		if ok, wait := s.limiter.allow(clientKey(r)); !ok {
			s.stats.rateLimited.Add(1)
			setRetryAfter(w, wait)
			writeError(w, http.StatusTooManyRequests, "", "client rate limit exceeded (%g jobs/s); retry later", s.cfg.RateLimit)
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "body", "request body exceeds %d bytes", int64(maxRequestBody))
			return
		}
		writeError(w, http.StatusBadRequest, "body", "invalid JSON: %v", err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		req.Wait = true
	}

	c, rerr := compileRequest(&req, s.cfg.Ceiling)
	if rerr != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: *rerr})
		return
	}

	j, deduped, err := s.admit(c, req)
	if err != nil {
		var full *FullError
		switch {
		case errors.As(err, &full):
			s.stats.shed.Add(1)
			setRetryAfter(w, s.retryAfter(full.Class))
			writeError(w, http.StatusTooManyRequests, "", "%s queue is full (%d jobs); retry later", full.Class, full.Cap)
		default: // closed by a concurrent drain
			setRetryAfter(w, s.cfg.RetryAfter)
			writeError(w, http.StatusServiceUnavailable, "", "server is draining; retry against the restarted instance")
		}
		return
	}

	if !req.Wait {
		// An async submitter will come back for the result: pin the job so
		// no later watcher bookkeeping can cancel it.
		j.pin()
		writeJSON(w, http.StatusAccepted, j.view(deduped))
		return
	}
	j.addWatcher()
	select {
	case <-j.Done():
		j.dropWatcher() // after Done: never triggers an abort
	case <-r.Context().Done():
		// Client gave up. Batch jobs and jobs with other watchers (or an
		// async submitter) keep running — idempotent to re-ask. An
		// interactive job nobody is waiting for is canceled so the worker
		// serves clients that are still here; the engine returns
		// best-so-far, and a retry of the same request runs fresh.
		if j.dropWatcher() {
			s.stats.disconnectCancels.Add(1)
		}
		writeJSON(w, http.StatusAccepted, j.view(deduped))
		return
	}
	if j.Status() == StatusInterrupted {
		// A drain caught the job mid-run; it will resume after restart.
		setRetryAfter(w, s.cfg.RetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, j.view(deduped))
		return
	}
	writeJSON(w, httpStatusFor(j), j.view(deduped))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "id", "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view(false))
}

// streamInterval is the progress-snapshot cadence of the stream endpoint.
const streamInterval = 250 * time.Millisecond

// handleStream writes JSON-lines progress for one job: one obs snapshot
// object per interval while the job runs, then a final {"job": ...} line.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "id", "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func() bool {
		snap := j.Run().Snapshot(time.Now())
		if err := enc.Encode(&snap); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	ticker := time.NewTicker(streamInterval)
	defer ticker.Stop()
	for {
		if !emit() {
			return
		}
		select {
		case <-j.Done():
			emit()
			enc.Encode(map[string]JobView{"job": j.view(false)})
			if flusher != nil {
				flusher.Flush()
			}
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// healthView is the /v1/healthz body.
type healthView struct {
	Status            string `json:"status"` // "ok", "degraded", or "draining"
	Workers           int    `json:"workers"`
	Running           int64  `json:"running"`
	QueuedInteractive int    `json:"queued_interactive"`
	QueuedBatch       int    `json:"queued_batch"`
	Stats             Stats  `json:"stats"`
	// Domains are the fault-domain breaker views: state, trip/probe/
	// recovery counters, last error. A domain away from "closed" means
	// that feature is currently shed (see the health package).
	Domains []health.View `json:"domains"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	qi, qb := s.queue.Depths()
	status := "ok"
	if s.health.Degraded() {
		status = "degraded"
	}
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthView{
		Status:            status,
		Workers:           s.cfg.Workers,
		Running:           s.running.Load(),
		QueuedInteractive: qi,
		QueuedBatch:       qb,
		Stats:             s.Stats(),
		Domains:           s.health.Views(),
	})
}
