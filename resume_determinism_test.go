package rmrls

// Resume determinism over the paper's worked examples: every one of the
// Section V-C functions is synthesized uninterrupted, then again in two
// segments split at a seeded-random step with a checkpoint in between.
// The resumed run must land on the exact same outcome — same circuit,
// same counters — and every found circuit must verify against the
// specification. This is the end-to-end guarantee that a long run killed
// at an arbitrary point loses nothing.

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

func resumeExampleOptions() Options {
	opts := DefaultOptions()
	// Deterministic budget: large enough to solve most worked examples,
	// bounded so the hard ones terminate; wall-clock limits would make
	// the interrupt point machine-dependent.
	opts.TotalSteps = 40000
	return opts
}

func TestResumeDeterminismWorkedExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesizes all 14 worked examples twice")
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(20260806))
	for _, b := range bench.Examples() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			spec, err := b.PPRMSpec()
			if err != nil {
				t.Fatal(err)
			}
			opts := resumeExampleOptions()
			ref := SynthesizeSpecContext(ctx, spec, opts)
			if ref.Steps < 2 {
				t.Skipf("only %d steps: no interior interrupt point", ref.Steps)
			}

			// Interrupt at a seeded-random interior step; the step budget
			// stands in for the asynchronous kill deterministically.
			k := 1 + rng.Intn(ref.Steps-1)
			path := filepath.Join(t.TempDir(), "example.ckpt")
			seg1opts := opts
			seg1opts.TotalSteps = k
			seg1opts.Checkpoint = Checkpoint{Path: path, EverySteps: 1 << 30}
			seg1 := SynthesizeSpecContext(ctx, spec, seg1opts)
			if seg1.StopReason != StopStepLimit {
				t.Fatalf("segment 1 stopped with %v at step %d, want step limit", seg1.StopReason, k)
			}
			if seg1.Checkpoints == 0 {
				t.Fatal("segment 1 flushed no checkpoint")
			}

			res, err := ResumeSpecContext(ctx, spec, opts, path)
			if err != nil {
				t.Fatalf("resume at step %d: %v", k, err)
			}
			if !res.Resumed {
				t.Error("result not marked Resumed")
			}
			if res.Found != ref.Found {
				t.Fatalf("interrupt at step %d/%d: found=%v, uninterrupted found=%v",
					k, ref.Steps, res.Found, ref.Found)
			}
			if res.Found {
				if got, want := res.Circuit.Len(), ref.Circuit.Len(); got != want {
					t.Errorf("interrupt at step %d/%d: %d gates, uninterrupted %d",
						k, ref.Steps, got, want)
				}
				if got, want := res.Circuit.String(), ref.Circuit.String(); got != want {
					t.Errorf("interrupt at step %d/%d changed the circuit:\n%s\nvs\n%s",
						k, ref.Steps, got, want)
				}
				// Verify gates every resumed result where the permutation
				// is tabulated (the wide shifters carry only a PPRM).
				if b.Spec != nil {
					if err := Verify(res.Circuit, b.Spec); err != nil {
						t.Errorf("resumed circuit does not realize %s: %v", b.Name, err)
					}
				}
			}
			if res.Steps != ref.Steps || res.Nodes != ref.Nodes || res.Restarts != ref.Restarts {
				t.Errorf("interrupt at step %d: steps/nodes/restarts %d/%d/%d, uninterrupted %d/%d/%d",
					k, res.Steps, res.Nodes, res.Restarts, ref.Steps, ref.Nodes, ref.Restarts)
			}
			if res.StopReason != ref.StopReason {
				t.Errorf("interrupt at step %d: stop %v, uninterrupted %v", k, res.StopReason, ref.StopReason)
			}
			if res.DedupHits != ref.DedupHits || res.DedupMisses != ref.DedupMisses ||
				res.DedupEvictions != ref.DedupEvictions {
				t.Errorf("interrupt at step %d: dedup counters %d/%d/%d, uninterrupted %d/%d/%d",
					k, res.DedupHits, res.DedupMisses, res.DedupEvictions,
					ref.DedupHits, ref.DedupMisses, ref.DedupEvictions)
			}
			if res.PeakQueueBytes != ref.PeakQueueBytes {
				t.Errorf("interrupt at step %d: peak memory %d, uninterrupted %d",
					k, res.PeakQueueBytes, ref.PeakQueueBytes)
			}
		})
	}
}
