package bench

import (
	"context"
	"runtime"
	"testing"
)

// TestParallelBenchSmoke runs a scaled-down parallel harness end to end:
// the report must carry every engine row, every det-merge width must
// fingerprint identically, and — when the runner actually has cores to
// scale onto — the free-running engine must beat the sequential baseline
// by the CI floor (8-worker wall clock ≤ 0.6× single-worker). On fewer
// than 4 cores the throughput assertion is skipped; the determinism
// assertions hold everywhere.
func TestParallelBenchSmoke(t *testing.T) {
	cfg := ParallelBenchConfig{Table1Sample: 20, Random4: 3, TotalSteps: 8000}
	report, err := RunParallelBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.CPUs < 1 || report.GOMAXPROCS < 1 {
		t.Errorf("missing machine metadata: cpus=%d gomaxprocs=%d", report.CPUs, report.GOMAXPROCS)
	}
	if len(report.Workloads) != 2 {
		t.Fatalf("workloads = %d, want 2", len(report.Workloads))
	}
	for _, w := range report.Workloads {
		// sequential + one det-merge row per width + free-running.
		want := 1 + len(report.Config.Widths) + 1
		if len(w.Rows) != want {
			t.Fatalf("%s: rows = %d, want %d", w.Workload, len(w.Rows), want)
		}
		if !w.DetMergeIdentical {
			t.Errorf("%s: det-merge trajectories differ across worker counts", w.Workload)
		}
		for _, r := range w.Rows {
			if r.Expansions <= 0 {
				t.Errorf("%s/%s-%d: no expansions recorded", w.Workload, r.Engine, r.Workers)
			}
			if r.Trajectory == "" {
				t.Errorf("%s/%s-%d: missing trajectory fingerprint", w.Workload, r.Engine, r.Workers)
			}
		}
	}

	if runtime.NumCPU() < 4 {
		t.Logf("only %d cores: skipping the throughput floor (speedups here measure overhead, not scaling)", runtime.NumCPU())
		return
	}
	w := report.Workloads[0] // table1-3var
	var seq, free *EngineRow
	for i := range w.Rows {
		switch w.Rows[i].Engine {
		case "sequential":
			seq = &w.Rows[i]
		case "free-running":
			free = &w.Rows[i]
		}
	}
	if seq == nil || free == nil {
		t.Fatal("missing sequential or free-running row")
	}
	// Equal budgets, so wall-clock ratio ≈ expansion-rate ratio.
	if free.NodesPerSec < seq.NodesPerSec/0.6 {
		t.Errorf("free-running throughput %.0f exp/s on %d cores, want ≥ %.0f (≤0.6× sequential wall clock)",
			free.NodesPerSec, runtime.NumCPU(), seq.NodesPerSec/0.6)
	}
}
