package health

import (
	"errors"
	"io/fs"

	"repro/internal/snapshot"
)

// GuardFS puts b in front of every I/O operation of inner: while the
// domain is open, operations fail instantly with *ErrOpen (no syscall),
// and outcomes feed the breaker so the domain trips on persistent faults
// and re-closes after a successful probe.
//
// The accounting follows the shape of snapshot.WriteRaw — CreateTemp,
// Write, Sync, Close, Rename, SyncDir — where SyncDir is the final
// operation of a successful atomic replace: it is the one success point
// recorded, so a whole multi-operation write counts as one breaker
// outcome instead of six. ReadFile records both outcomes (fs.ErrNotExist
// counts as a *success* — the device answered; "no file" is an answer).
// Remove is deliberately unguarded and unrecorded: it is best-effort
// cleanup whose errors are noise (removing an already-missing file fails
// too), and it must keep working during an outage so a heal does not
// resurrect stale artifacts.
func GuardFS(inner snapshot.FS, b *Breaker) snapshot.FS {
	if inner == nil {
		inner = snapshot.DiskFS
	}
	return &guardFS{inner: inner, b: b}
}

type guardFS struct {
	inner snapshot.FS
	b     *Breaker
}

func (g *guardFS) open() error {
	return &ErrOpen{Domain: g.b.Name(), RetryIn: g.b.retryIn()}
}

func (g *guardFS) CreateTemp(dir, pattern string) (snapshot.File, error) {
	if !g.b.Allow() {
		return nil, g.open()
	}
	f, err := g.inner.CreateTemp(dir, pattern)
	if err != nil {
		g.b.Record(err)
		return nil, err
	}
	return &guardFile{inner: f, b: g.b}, nil
}

func (g *guardFS) Rename(oldpath, newpath string) error {
	err := g.inner.Rename(oldpath, newpath)
	if err != nil {
		g.b.Record(err)
	}
	return err
}

func (g *guardFS) Remove(name string) error { return g.inner.Remove(name) }

func (g *guardFS) SyncDir(dir string) error {
	err := g.inner.SyncDir(dir)
	g.b.Record(err)
	return err
}

func (g *guardFS) ReadFile(name string) ([]byte, error) {
	if !g.b.Allow() {
		return nil, g.open()
	}
	data, err := g.inner.ReadFile(name)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		g.b.Record(err)
	} else {
		g.b.Record(nil)
	}
	return data, err
}

type guardFile struct {
	inner snapshot.File
	b     *Breaker
}

func (f *guardFile) Name() string { return f.inner.Name() }

func (f *guardFile) Write(p []byte) (int, error) {
	n, err := f.inner.Write(p)
	if err != nil {
		f.b.Record(err)
	}
	return n, err
}

func (f *guardFile) Sync() error {
	err := f.inner.Sync()
	if err != nil {
		f.b.Record(err)
	}
	return err
}

func (f *guardFile) Close() error {
	err := f.inner.Close()
	if err != nil {
		f.b.Record(err)
	}
	return err
}
