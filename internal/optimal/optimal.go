// Package optimal computes provably minimal gate counts for all reversible
// functions of three variables, reproducing the "Optimal [16]" columns of
// the paper's Table I (Shende, Prasad, Markov, Hayes, IEEE TCAD 2003).
//
// Shende et al. obtain optimal circuits by iterative deepening; for n = 3
// the whole symmetric group S_8 has only 8! = 40 320 elements, so a single
// breadth-first search from the identity over the gate library reaches
// every function at its minimal distance. Gate libraries are closed under
// inverses (every NOT/CNOT/Toffoli/SWAP gate is self-inverse), so distance
// from the identity equals distance to the identity and the BFS yields the
// minimal synthesis cost for every function simultaneously.
package optimal

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/perm"
)

// Library selects the gate set for the exhaustive search.
type Library int

const (
	// NCT is NOT + CNOT + 3-bit Toffoli.
	NCT Library = iota
	// NCTS adds the SWAP gate (unconditional exchange of two wires).
	NCTS
)

func (l Library) String() string {
	if l == NCTS {
		return "NCTS"
	}
	return "NCT"
}

// generator is one gate together with its action table on all 2^n values.
type generator struct {
	gate   circuit.Gate // meaningful for Toffoli-family generators
	swapA  int          // for SWAP generators: the two wires exchanged
	swapB  int
	isSwap bool
	table  []uint32
}

// Generators returns the gate set for n wires: all NOTs, all CNOTs, all
// 3-bit Toffoli gates (every choice of 2 controls and a target), plus all
// SWAPs for NCTS.
func Generators(n int, lib Library) []generator {
	var gens []generator
	add := func(g generator) {
		g.table = make([]uint32, 1<<uint(n))
		for x := range g.table {
			g.table[x] = g.apply(uint32(x))
		}
		gens = append(gens, g)
	}
	for t := 0; t < n; t++ {
		add(generator{gate: circuit.NewGate(t)})
		for c := 0; c < n; c++ {
			if c == t {
				continue
			}
			add(generator{gate: circuit.NewGate(t, c)})
			for c2 := c + 1; c2 < n; c2++ {
				if c2 == t {
					continue
				}
				add(generator{gate: circuit.NewGate(t, c, c2)})
			}
		}
	}
	if lib == NCTS {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				add(generator{isSwap: true, swapA: a, swapB: b})
			}
		}
	}
	return gens
}

func (g *generator) apply(x uint32) uint32 {
	if !g.isSwap {
		return g.gate.Apply(x)
	}
	ba := x >> uint(g.swapA) & 1
	bb := x >> uint(g.swapB) & 1
	if ba != bb {
		x ^= 1<<uint(g.swapA) | 1<<uint(g.swapB)
	}
	return x
}

// encode packs a 3-variable permutation into 24 bits (3 bits per image).
func encode(p perm.Perm) uint32 {
	var code uint32
	for i, v := range p {
		code |= v << uint(3*i)
	}
	return code
}

// Distances computes the minimal gate count for every 3-variable reversible
// function over the chosen library. The returned map is keyed by the packed
// encoding of the permutation; use Lookup to query it.
func Distances(lib Library) *Table {
	const n = 3
	gens := Generators(n, lib)
	dist := make(map[uint32]uint8, 40320)
	id := perm.Identity(n)
	frontier := []perm.Perm{id}
	dist[encode(id)] = 0
	for depth := uint8(1); len(frontier) > 0; depth++ {
		var next []perm.Perm
		for _, p := range frontier {
			for gi := range gens {
				g := &gens[gi]
				// Compose the generator at the output side; since the
				// generator set is symmetric this explores the whole
				// Cayley graph.
				q := make(perm.Perm, len(p))
				for x, v := range p {
					q[x] = g.table[v]
				}
				code := encode(q)
				if _, seen := dist[code]; !seen {
					dist[code] = depth
					next = append(next, q)
				}
			}
		}
		frontier = next
	}
	return &Table{lib: lib, dist: dist}
}

// Table holds the minimal gate counts of every 3-variable reversible
// function for one library.
type Table struct {
	lib  Library
	dist map[uint32]uint8
}

// Lookup returns the optimal gate count for p.
func (t *Table) Lookup(p perm.Perm) (int, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("optimal: table covers 3-variable functions, got %d rows", len(p))
	}
	d, ok := t.dist[encode(p)]
	if !ok {
		return 0, fmt.Errorf("optimal: %s not reachable (invalid permutation?)", p)
	}
	return int(d), nil
}

// Circuit reconstructs a provably minimal cascade for p by walking the
// distance table: from p, repeatedly apply the generator that reduces the
// distance until the identity is reached. Only available for Toffoli-family
// libraries (NCT); SWAP gates have no single-gate cascade representation.
func (t *Table) Circuit(p perm.Perm) (*circuit.Circuit, error) {
	if t.lib != NCT {
		return nil, fmt.Errorf("optimal: circuit reconstruction requires the NCT table")
	}
	d, err := t.Lookup(p)
	if err != nil {
		return nil, err
	}
	gens := Generators(3, t.lib)
	cur := append(perm.Perm(nil), p...)
	// Walking p → id collects generators outermost-first (each applied at
	// the output side), so the input→output cascade is the reverse.
	outer := make([]circuit.Gate, 0, d)
	for depth := d; depth > 0; depth-- {
		found := false
		for gi := range gens {
			g := &gens[gi]
			q := make(perm.Perm, len(cur))
			for x, v := range cur {
				q[x] = g.table[v]
			}
			if dq, err := t.Lookup(q); err == nil && dq == depth-1 {
				outer = append(outer, g.gate)
				cur = q
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("optimal: reconstruction stuck at distance %d", depth)
		}
	}
	c := circuit.New(3)
	for i := len(outer) - 1; i >= 0; i-- {
		c.Append(outer[i])
	}
	return c, nil
}

// Histogram returns the number of functions at each optimal gate count,
// indexed by gate count, plus the average — the "Optimal [16]" column of
// Table I.
func (t *Table) Histogram() (counts []int, average float64) {
	maxDepth := 0
	for _, d := range t.dist {
		if int(d) > maxDepth {
			maxDepth = int(d)
		}
	}
	counts = make([]int, maxDepth+1)
	total := 0
	for _, d := range t.dist {
		counts[d]++
		total += int(d)
	}
	average = float64(total) / float64(len(t.dist))
	return counts, average
}

// Size returns how many functions the table covers (40 320 when complete).
func (t *Table) Size() int { return len(t.dist) }
