// Package bits provides small helpers for manipulating product terms and
// variable sets represented as bit masks.
//
// Throughout the repository a product term (a conjunction of uncomplemented
// variables, as used in positive-polarity Reed–Muller expansions) is a
// uint32 mask: bit i set means variable i appears in the term. The constant
// term 1 is the empty mask. Wire/variable indices are 0-based; index 0 is
// conventionally printed as "a", 1 as "b", and so on.
package bits

import (
	mathbits "math/bits"
	"strconv"
	"strings"
)

// MaxVars is the largest number of variables supported by the mask
// representation.
const MaxVars = 32

// Mask is a set of variables (equivalently, a positive-polarity product
// term). The zero Mask is the constant term 1 (empty variable set).
type Mask = uint32

// Bit returns the mask with only variable i set.
func Bit(i int) Mask { return 1 << uint(i) }

// Has reports whether variable i is in m.
func Has(m Mask, i int) bool { return m&Bit(i) != 0 }

// Count returns the number of variables in m (the literal count of the term).
func Count(m Mask) int { return mathbits.OnesCount32(m) }

// LowestVar returns the smallest variable index in m, or -1 if m is empty.
func LowestVar(m Mask) int {
	if m == 0 {
		return -1
	}
	return mathbits.TrailingZeros32(m)
}

// Vars returns the variable indices in m in ascending order.
func Vars(m Mask) []int {
	out := make([]int, 0, Count(m))
	for m != 0 {
		i := mathbits.TrailingZeros32(m)
		out = append(out, i)
		m &^= 1 << uint(i)
	}
	return out
}

// VarName returns the conventional name for variable i: "a"–"z" for the
// first 26 and "x26", "x27", … beyond that.
func VarName(i int) string {
	if i >= 0 && i < 26 {
		return string(rune('a' + i))
	}
	return "x" + strconv.Itoa(i)
}

// VarIndex parses a name produced by VarName, returning -1 if it is not a
// valid variable name.
func VarIndex(s string) int {
	if len(s) == 1 && s[0] >= 'a' && s[0] <= 'z' {
		return int(s[0] - 'a')
	}
	if strings.HasPrefix(s, "x") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < MaxVars {
			return n
		}
	}
	return -1
}

// TermString formats the product term m, e.g. "abc" for variables 0,1,2.
// The empty term is formatted as "1".
func TermString(m Mask) string {
	if m == 0 {
		return "1"
	}
	var b strings.Builder
	for _, v := range Vars(m) {
		b.WriteString(VarName(v))
	}
	return b.String()
}

// ParseTerm parses a term in the format produced by TermString: a
// concatenation of single-letter variable names (or "1" for the constant
// term). It returns the mask and whether the parse succeeded.
func ParseTerm(s string) (Mask, bool) {
	if s == "1" {
		return 0, true
	}
	if s == "" {
		return 0, false
	}
	var m Mask
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return 0, false
		}
		m |= Bit(int(r - 'a'))
	}
	return m, true
}

// SubsetOf reports whether every variable of a is also in b.
func SubsetOf(a, b Mask) bool { return a&^b == 0 }

// Reverse returns the mask with the low n bits of m reversed, so that
// variable i maps to variable n-1-i.
func Reverse(m Mask, n int) Mask {
	var out Mask
	for i := 0; i < n; i++ {
		if Has(m, i) {
			out |= Bit(n - 1 - i)
		}
	}
	return out
}
