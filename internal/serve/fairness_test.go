package serve

import (
	"fmt"
	"testing"
	"time"
)

// TestSweepKeepsThrottledClientsUnderKeyChurn is the regression test for
// the capacity sweep evicting buckets by wall-clock age: a flood of
// spoofed X-Client-IDs pins the map at its 4096-key cap, so every new
// key runs the sweep, and the old unconditional 10-minute idle rule
// would delete the bucket of a legitimately throttled client whose
// refill window (burst/rate) is much longer than 10 minutes. Its next
// submission then minted a fresh full bucket — the abuser that caused
// the sweep also reset every active client's limit. The sweep may only
// drop buckets the lazy refill has already returned to full, where
// recreation is indistinguishable from retention.
func TestSweepKeepsThrottledClientsUnderKeyChurn(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	// 0.001 jobs/s, burst 2: a drained bucket takes ~2000 s to refill.
	l := newLimiter(0.001, 2, func() time.Time { return now })

	// Client A spends its burst and is throttled.
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("id:A"); !ok {
			t.Fatalf("burst submission %d throttled, want allowed", i)
		}
	}
	if ok, wait := l.allow("id:A"); ok {
		t.Fatal("A allowed over burst, want throttled")
	} else if wait <= 0 {
		t.Fatalf("throttled without a retry hint (wait=%v)", wait)
	}

	// A spoofed-ID flood pins the bucket map at its cap, forcing the
	// sweep on every new key.
	for i := 0; i < 5000; i++ {
		l.allow(fmt.Sprintf("id:flood-%d", i))
	}

	// Eleven minutes of quiet: past the old wall-clock eviction cutoff,
	// but far inside A's ~2000 s refill window.
	now = now.Add(11 * time.Minute)
	if ok, _ := l.allow("id:A"); ok {
		t.Fatal("throttled client re-admitted after the flood: the sweep evicted its dry bucket and the retry minted a fresh full one")
	}

	// The second client is still served: when nothing is legitimately
	// evictable the limiter fails open for new keys rather than shedding
	// innocents — bounded memory must cost the abuser, not client B.
	if ok, _ := l.allow("id:B"); !ok {
		t.Fatal("fresh client throttled while the map is pinned at its cap")
	}

	// Once the refill window truly elapses the flood's full buckets (and
	// A's) become evictable, the map shrinks, and A is whole again.
	now = now.Add(2100 * time.Second)
	if ok, _ := l.allow("id:C"); !ok {
		t.Fatal("new client throttled after the refill window expired")
	}
	if n := len(l.buckets); n >= 4096 {
		t.Fatalf("bucket map still pinned at %d entries after every bucket refilled", n)
	}
	if ok, _ := l.allow("id:A"); !ok {
		t.Fatal("A still throttled after its bucket fully refilled")
	}
}
