package cache_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// redirectFS rewrites a path prefix before hitting the real disk — enough
// to prove reads go through the seam rather than straight to os.ReadFile.
type redirectFS struct{ from, to string }

func (r redirectFS) rewrite(p string) string {
	if strings.HasPrefix(p, r.from) {
		return r.to + strings.TrimPrefix(p, r.from)
	}
	return p
}

func (r redirectFS) CreateTemp(dir, pattern string) (snapshot.File, error) {
	return snapshot.DiskFS.CreateTemp(r.rewrite(dir), pattern)
}
func (r redirectFS) Rename(o, n string) error {
	return snapshot.DiskFS.Rename(r.rewrite(o), r.rewrite(n))
}
func (r redirectFS) Remove(n string) error  { return snapshot.DiskFS.Remove(r.rewrite(n)) }
func (r redirectFS) SyncDir(d string) error { return snapshot.DiskFS.SyncDir(r.rewrite(d)) }
func (r redirectFS) ReadFile(n string) ([]byte, error) {
	return snapshot.DiskFS.ReadFile(r.rewrite(n))
}

// stubGuard is a hand-cranked cache.Guard: tests flip allow and inspect
// what the cache recorded.
type stubGuard struct {
	mu      sync.Mutex
	allow   bool
	results []error
}

func (g *stubGuard) Allow() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.allow
}

func (g *stubGuard) Record(err error) {
	g.mu.Lock()
	g.results = append(g.results, err)
	g.mu.Unlock()
}

func (g *stubGuard) set(allow bool) {
	g.mu.Lock()
	g.allow = allow
	g.mu.Unlock()
}

func (g *stubGuard) recorded() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.results)
}

func TestGuardOpenShedsDiskButServesMemory(t *testing.T) {
	dir := t.TempDir()
	c, err := cache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := &stubGuard{allow: false}
	c.SetGuard(g)

	src := rng.New(7)
	circ, p := randomSpec(3, 4, src)
	// Store with the guard open: the entry must land in memory, no file
	// appears, and no error surfaces.
	if _, stored, err := c.Put(p, fpA, circ); err != nil || !stored {
		t.Fatalf("Put under open guard = stored=%v err=%v, want stored, no error", stored, err)
	}
	if files, _ := os.ReadDir(dir); len(files) != 0 {
		t.Fatalf("open guard persisted %d files", len(files))
	}
	// The memory entry still answers.
	if _, ok := c.Lookup(p, fpA); !ok {
		t.Fatal("memory entry not served while disk shed")
	}
	if g.recorded() != 0 {
		t.Fatalf("shed operations recorded %d outcomes, want 0 (no I/O happened)", g.recorded())
	}
	if s := c.Stats(); s.DiskShed == 0 {
		t.Errorf("stats = %+v, want DiskShed > 0", s)
	}

	// Guard closes (disk healed): stores persist again and read-through
	// resumes, each recording a success.
	g.set(true)
	circ2, p2 := randomSpec(3, 5, src)
	if _, _, err := c.Put(p2, fpB, circ2); err != nil {
		t.Fatalf("Put after heal: %v", err)
	}
	var rmce int
	files, _ := os.ReadDir(dir)
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".rmce") {
			rmce++
		}
	}
	if rmce != 1 {
		t.Fatalf("after heal: %d entry files, want 1", rmce)
	}
	if g.recorded() == 0 {
		t.Fatal("healed store recorded no outcome")
	}
}

func TestGuardOpenLookupSkipsDisk(t *testing.T) {
	dir := t.TempDir()
	writer, err := cache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(8)
	circ, p := randomSpec(3, 4, src)
	if _, _, err := writer.Put(p, fpA, circ); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same dir, guard open: the on-disk entry is
	// invisible (transparent miss), not an error.
	c, err := cache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := &stubGuard{allow: false}
	c.SetGuard(g)
	if _, ok := c.Lookup(p, fpA); ok {
		t.Fatal("open guard served a disk entry")
	}
	// Heal: the same lookup now reads through and hits.
	g.set(true)
	if _, ok := c.Lookup(p, fpA); !ok {
		t.Fatal("healed lookup missed the persisted entry")
	}
	if g.recorded() == 0 {
		t.Fatal("healed read-through recorded no outcome")
	}
}

func TestGuardedReadThroughUsesFSSeam(t *testing.T) {
	// loadLocked must read via the snapshot.FS seam, not os.ReadFile:
	// prove it by pointing the cache at a missing directory through an FS
	// stub that serves the bytes anyway.
	dir := t.TempDir()
	writer, err := cache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	circ, p := randomSpec(3, 4, src)
	if _, _, err := writer.Put(p, fpA, circ); err != nil {
		t.Fatal(err)
	}
	if files, _ := os.ReadDir(dir); len(files) != 1 {
		t.Fatalf("setup: %d files", len(files))
	}

	redirect := filepath.Join(t.TempDir(), "elsewhere")
	c, err := cache.Open(redirect, redirectFS{from: redirect, to: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(p, fpA); !ok {
		t.Fatal("lookup did not read through the FS seam")
	}
}
