package circuit

// Quantum cost model (Section II-D of the paper).
//
// The quantum cost of a circuit is the sum of the quantum costs of its
// gates; the cost of a gate is the number of elementary quantum operations
// needed to realize it. NOT and CNOT are elementary (cost 1). The 3-bit
// Toffoli gate has the well-known 5-operation realization of Barenco et
// al., and larger gates are macros whose cost depends on how many idle
// ("free") wires the circuit offers as temporary storage.
//
// The paper takes its numbers from Maslov's benchmark-page cost table,
// which is no longer available; this model reproduces its published
// values exactly for sizes ≤ 5 and its linear ancilla-assisted regime for
// larger gates (see DESIGN.md, substitution table):
//
//	size m ≤ 2                      → 1
//	m = 3                           → 5
//	m = 4                           → 13
//	m = 5                           → 29
//	m ≥ 6, ≥ m−3 free wires         → 12(m−3) + 2
//	m ≥ 6, ≥ 1 free wire            → 24(m−4) + 4
//	m ≥ 6, no free wires            → 2^m − 3
//
// A "free wire" for a gate on a w-wire circuit is any wire the gate does
// not touch: w − m of them.

// GateCost returns the quantum cost of a single gate of the given size on a
// circuit with the given total wire count.
func GateCost(size, wires int) int {
	free := wires - size
	if free < 0 {
		free = 0
	}
	switch {
	case size <= 2:
		return 1
	case size == 3:
		return 5
	case size == 4:
		return 13
	case size == 5:
		return 29
	case free >= size-3:
		return 12*(size-3) + 2
	case free >= 1:
		return 24*(size-4) + 4
	default:
		return (1 << uint(size)) - 3
	}
}

// Cost returns the quantum cost of the gate on an n-wire circuit.
func (g Gate) Cost(wires int) int { return GateCost(g.Size(), wires) }

// QuantumCost returns the total quantum cost of the cascade.
func (c *Circuit) QuantumCost() int {
	total := 0
	for _, g := range c.Gates {
		total += g.Cost(c.Wires)
	}
	return total
}
