// Command benchjson runs the search benchmark-trajectory harness
// (internal/bench.RunSearchBench) and writes the machine-readable report
// consumed as BENCH_search.json: seeded, deterministic workloads with the
// transposition table off and on, plus the paper's fourteen worked
// examples. See docs/PERFORMANCE.md for how to read the output.
//
// Usage:
//
//	benchjson [-out BENCH_search.json] [-seed 1] [-table1 400]
//	          [-random4 60] [-steps 50000] [-examplesteps 150000]
//	          [-skip-examples]
//	benchjson -parallel [-out BENCH_parallel.json] [-seed 1]
//	          [-table1 100] [-random4 15] [-steps 30000]
//
// With -parallel the harness compares the search engines instead of the
// transposition table: sequential vs deterministic-merge at several
// worker counts (whose trajectories must be bit-identical) vs the
// free-running work-stealing engine, writing BENCH_parallel.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out          = fs.String("out", "", "output file (\"-\" for stdout; default BENCH_search.json, or BENCH_parallel.json with -parallel)")
		seed         = fs.Uint64("seed", 0, "workload seed (0 = default 1)")
		table1       = fs.Int("table1", 0, "3-variable Table-I sample size (0 = default 400, or 100 with -parallel)")
		random4      = fs.Int("random4", 0, "4-variable random sample size (0 = default 60, or 15 with -parallel)")
		steps        = fs.Int("steps", 0, "per-function expansion budget (0 = default 50000, or 30000 with -parallel)")
		exampleSteps = fs.Int("examplesteps", 0, "per-example expansion budget (0 = default 150000)")
		skipExamples = fs.Bool("skip-examples", false, "skip the worked-examples comparison")
		parallel     = fs.Bool("parallel", false, "run the parallel-engine harness instead (sequential vs det-merge widths vs free-running)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	if *parallel {
		return runParallel(ctx, bench.ParallelBenchConfig{
			Seed:         *seed,
			Table1Sample: *table1,
			Random4:      *random4,
			TotalSteps:   *steps,
		}, *out, stdout, stderr)
	}
	if *out == "" {
		*out = "BENCH_search.json"
	}

	cfg := bench.SearchBenchConfig{
		Seed:         *seed,
		Table1Sample: *table1,
		Random4:      *random4,
		TotalSteps:   *steps,
		ExampleSteps: *exampleSteps,
		SkipExamples: *skipExamples,
	}
	report, err := bench.RunSearchBench(ctx, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		if ctx.Err() != nil {
			return 3
		}
		return 1
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}

	for _, w := range report.Workloads {
		fmt.Fprintf(stderr, "%-12s  expansions %8d -> %8d (-%.1f%%)  hit rate %.2f  allocs/exp %.1f -> %.1f\n",
			w.Workload, w.Off.Expansions, w.On.Expansions, 100*w.ExpansionReduction,
			w.On.DedupHitRate, w.Off.AllocsPerExpansion, w.On.AllocsPerExpansion)
	}
	for _, e := range report.Examples {
		fmt.Fprintf(stderr, "%-12s  gates %2d -> %2d (paper %2d)  steps %7d -> %7d\n",
			e.Name, e.GatesOff, e.GatesOn, e.PaperGates, e.StepsOff, e.StepsOn)
	}
	return 0
}

// runParallel executes the parallel-engine harness and writes its report.
func runParallel(ctx context.Context, cfg bench.ParallelBenchConfig, out string, stdout, stderr io.Writer) int {
	if out == "" {
		out = "BENCH_parallel.json"
	}
	report, err := bench.RunParallelBench(ctx, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		if ctx.Err() != nil {
			return 3
		}
		return 1
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = stdout.Write(data)
	} else {
		err = os.WriteFile(out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "machine: %d cpus, GOMAXPROCS %d (speedups are relative to this box)\n",
		report.CPUs, report.GOMAXPROCS)
	for _, w := range report.Workloads {
		det := "det-merge IDENTICAL across widths"
		if !w.DetMergeIdentical {
			det = "det-merge DIVERGED across widths (BUG)"
		}
		fmt.Fprintf(stderr, "%s: %s\n", w.Workload, det)
		for _, r := range w.Rows {
			fmt.Fprintf(stderr, "  %-12s w=%d  %8d exp  %6.2fs  %8.0f exp/s  speedup %.2fx  traj %s\n",
				r.Engine, r.Workers, r.Expansions, r.Seconds, r.NodesPerSec, r.Speedup, r.Trajectory)
		}
	}
	return 0
}
